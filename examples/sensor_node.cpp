// Domain example: a battery-powered sensor node with a bursty duty
// cycle — sample, process, transmit — where the battery's recovery
// effect dominates. Demonstrates the battery substrate standalone:
// comparing duty-cycling strategies with identical average demand on
// the calibrated models, and picking a sampling period from lifetime
// targets. Both sweeps run on the experiment engine (--jobs/--csv), and
// the cells come from the scenario registry — the same models the
// `sensor-node` scenario pits the schedulers against.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "battery/lifetime.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, util::Cli::with_bench_defaults({}));

  // The radio dominates: 1.2 A while transmitting. Each duty cycle
  // samples (80 mA, 50 ms), processes (250 mA, 100 ms), transmits
  // (1.2 A, 40 ms), then sleeps at 2 mA.
  auto make_cycle = [](double period_s) {
    bat::LoadProfile p;
    p.add(0.050, 0.080);
    p.add(0.100, 0.250);
    p.add(0.040, 1.200);
    p.add(period_s - 0.190, 0.002);
    return p;
  };

  const std::vector<double> periods{0.5, 1.0, 2.0, 5.0, 10.0};
  std::vector<std::string> period_labels;
  for (const double period : periods) {
    period_labels.push_back(util::Table::num(period, 1));
  }
  const std::vector<std::string> models{"kibam", "diffusion", "ideal"};

  util::print_banner("Sensor node: sampling period vs battery lifetime");

  exp::ExperimentSpec sweep;
  sweep.title = "sensor_node_period_sweep";
  sweep.config = cli.config_summary();
  sweep.grid.add("period_s", period_labels);
  sweep.metrics = {"kibam_h", "diffusion_h", "ideal_h", "avg_ma", "samples"};
  sweep.run = [&](const exp::Job& job) -> std::vector<double> {
    const double period = periods[job.at(0)];
    const auto cycle = make_cycle(period);
    std::vector<double> out;
    double kibam_life_s = 0.0;
    for (const auto& model : models) {
      const auto cell = scenario::make_battery(model);
      const auto life = bat::lifetime_under_profile(*cell, cycle, 5e6);
      if (model == "kibam") {
        kibam_life_s = life.lifetime_s;
      }
      out.push_back(life.lifetime_s / 3600.0);
    }
    out.push_back(1000.0 * cycle.average_current_a());
    out.push_back(static_cast<double>(
        static_cast<long long>(kibam_life_s / period)));
    return out;
  };
  const auto result = exp::run_experiment(sweep, exp::options_from_cli(cli));

  util::Table table({"period (s)", "avg current (mA)", "kibam (h)",
                     "diffusion (h)", "ideal (h)", "samples taken"});
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    table.add_row({result.grid().labels(c)[0],
                   util::Table::num(result.mean(c, 3), 1),
                   util::Table::num(result.mean(c, 0), 1),
                   util::Table::num(result.mean(c, 1), 1),
                   util::Table::num(result.mean(c, 2), 1),
                   util::Table::num(static_cast<long long>(
                       result.mean(c, 4)))});
  }
  table.print();

  // Same average demand, different burst arrangement: transmit right
  // after processing (back-to-back peak) vs spread out with rest gaps.
  util::print_banner("Burst arrangement at fixed 2 s period (equal demand)");
  bat::LoadProfile back_to_back;
  back_to_back.add(0.050, 0.080);
  back_to_back.add(0.100, 0.250);
  back_to_back.add(0.040, 1.200);
  back_to_back.add(1.810, 0.002);
  bat::LoadProfile spread;
  spread.add(0.050, 0.080);
  spread.add(0.905, 0.002);
  spread.add(0.100, 0.250);
  spread.add(0.040, 1.200);
  spread.add(0.905, 0.002);
  const std::vector<std::pair<std::string, const bat::LoadProfile*>>
      arrangements{{"back-to-back", &back_to_back},
                   {"spread with rests", &spread}};

  exp::ExperimentSpec burst;
  burst.title = "sensor_node_burst_arrangement";
  burst.config = cli.config_summary();
  burst.grid.add("arrangement", {arrangements[0].first, arrangements[1].first});
  burst.metrics = {"lifetime_h", "delivered_mah"};
  burst.run = [&](const exp::Job& job) -> std::vector<double> {
    const auto cell = scenario::make_battery("kibam");
    const auto r = bat::lifetime_under_profile(
        *cell, *arrangements[job.at(0)].second, 5e6);
    return {r.lifetime_s / 3600.0, r.delivered_mah()};
  };
  const auto burst_result =
      exp::run_experiment(burst, exp::options_from_cli(cli));

  util::Table t2({"arrangement", "kibam lifetime (h)", "delivered (mAh)"});
  for (std::size_t c = 0; c < burst_result.cell_count(); ++c) {
    t2.add_row({burst_result.grid().labels(c)[0],
                util::Table::num(burst_result.mean(c, 0), 2),
                util::Table::num(burst_result.mean(c, 1), 0)});
  }
  t2.print();
  std::printf(
      "\nRest gaps between bursts give the two-well battery time to "
      "equalize — the same recovery effect BAS exploits at the "
      "scheduler level.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    // The burst-arrangement sweep is a second experiment; write it next
    // to the main file rather than silently dropping it.
    std::string burst_csv = csv;
    const auto dot = burst_csv.rfind('.');
    burst_csv.insert(dot == std::string::npos ? burst_csv.size() : dot,
                     "-burst");
    exp::write(burst_result, burst_csv);
    std::printf("wrote %s and %s\n", csv.c_str(), burst_csv.c_str());
  }
  return 0;
}
