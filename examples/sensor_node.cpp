// Domain example: a battery-powered sensor node with a bursty duty
// cycle — sample, process, transmit — where the battery's recovery
// effect dominates. Demonstrates the battery substrate standalone:
// comparing duty-cycling strategies with identical average demand on
// the calibrated models, and picking a sampling period from lifetime
// targets.

#include <cstdio>

#include "battery/diffusion.hpp"
#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "battery/lifetime.hpp"
#include "util/table.hpp"

int main() {
  using namespace bas;

  // The radio dominates: 1.2 A while transmitting. Each duty cycle
  // samples (80 mA, 50 ms), processes (250 mA, 100 ms), transmits
  // (1.2 A, 40 ms), then sleeps at 2 mA.
  auto make_cycle = [](double period_s) {
    bat::LoadProfile p;
    p.add(0.050, 0.080);
    p.add(0.100, 0.250);
    p.add(0.040, 1.200);
    p.add(period_s - 0.190, 0.002);
    return p;
  };

  const bat::KibamBattery kibam(bat::KibamParams::paper_aaa_nimh());
  const bat::DiffusionBattery diffusion(bat::DiffusionParams::paper_aaa_nimh());
  const bat::IdealBattery ideal(bat::to_coulombs(2000.0));

  util::print_banner("Sensor node: sampling period vs battery lifetime");
  util::Table table({"period (s)", "avg current (mA)", "kibam (h)",
                     "diffusion (h)", "ideal (h)", "samples taken"});
  for (double period : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    const auto cycle = make_cycle(period);
    const auto k = bat::lifetime_under_profile(kibam, cycle, 5e6);
    const auto d = bat::lifetime_under_profile(diffusion, cycle, 5e6);
    const auto i = bat::lifetime_under_profile(ideal, cycle, 5e6);
    table.add_row({util::Table::num(period, 1),
                   util::Table::num(1000.0 * cycle.average_current_a(), 1),
                   util::Table::num(k.lifetime_s / 3600.0, 1),
                   util::Table::num(d.lifetime_s / 3600.0, 1),
                   util::Table::num(i.lifetime_s / 3600.0, 1),
                   util::Table::num(static_cast<long long>(
                       k.lifetime_s / period))});
  }
  table.print();

  // Same average demand, different burst arrangement: transmit right
  // after processing (back-to-back peak) vs spread out with rest gaps.
  util::print_banner("Burst arrangement at fixed 2 s period (equal demand)");
  bat::LoadProfile back_to_back;
  back_to_back.add(0.050, 0.080);
  back_to_back.add(0.100, 0.250);
  back_to_back.add(0.040, 1.200);
  back_to_back.add(1.810, 0.002);
  bat::LoadProfile spread;
  spread.add(0.050, 0.080);
  spread.add(0.905, 0.002);
  spread.add(0.100, 0.250);
  spread.add(0.040, 1.200);
  spread.add(0.905, 0.002);

  util::Table t2({"arrangement", "kibam lifetime (h)", "delivered (mAh)"});
  for (const auto& [name, profile] :
       {std::pair<const char*, const bat::LoadProfile*>{"back-to-back",
                                                        &back_to_back},
        {"spread with rests", &spread}}) {
    const auto r = bat::lifetime_under_profile(kibam, *profile, 5e6);
    t2.add_row({name, util::Table::num(r.lifetime_s / 3600.0, 2),
                util::Table::num(r.delivered_mah(), 0)});
  }
  t2.print();
  std::printf(
      "\nRest gaps between bursts give the two-well battery time to "
      "equalize — the same recovery effect BAS exploits at the "
      "scheduler level.\n");
  return 0;
}
