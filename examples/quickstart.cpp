// Quickstart: build a periodic task-graph workload, pick the paper's
// BAS-2 scheme, simulate it on the 3-point DVS processor, and estimate
// battery lifetime on the calibrated AAA NiMH cell.
//
//   $ ./build/examples/quickstart
//
// This walks through the whole public API surface in ~60 lines of code:
// task graphs -> workload -> scheme -> simulator -> battery.

#include <cstdio>

#include "core/scheme.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "taskgraph/set.hpp"

int main() {
  using namespace bas;

  // 1. Describe the workload: two periodic task graphs with precedence
  //    constraints. Work is in CPU cycles, periods in seconds, and each
  //    graph's deadline equals its period.
  tg::TaskGraphSet workload;
  {
    tg::TaskGraph video(0.040, "video");     // 25 fps pipeline
    const auto fetch = video.add_node(4e6, "fetch");
    const auto decode = video.add_node(14e6, "decode");
    const auto filter = video.add_node(8e6, "filter");
    const auto render = video.add_node(6e6, "render");
    video.add_edge(fetch, decode);
    video.add_edge(decode, filter);
    video.add_edge(decode, render);
    workload.add(std::move(video));

    tg::TaskGraph telemetry(0.100, "telemetry");  // 10 Hz housekeeping
    const auto sample = telemetry.add_node(3e6, "sample");
    const auto pack = telemetry.add_node(2e6, "pack");
    const auto send = telemetry.add_node(5e6, "send");
    telemetry.add_edge(sample, pack);
    telemetry.add_edge(pack, send);
    workload.add(std::move(telemetry));
  }
  workload.validate();

  // 2. The platform comes from the scenario registry: the paper's
  //    processor — (0.5 GHz, 3 V), (0.75 GHz, 4 V), (1 GHz, 5 V) behind
  //    a DC-DC converter on a 1.2 V battery rail — paired with the
  //    calibrated 2000 mAh KiBaM cell.
  const auto& world = scenario::scenario("paper-table2");
  const auto proc = world.make_processor();
  std::printf("workload: %zu graphs, worst-case utilization %.1f%%\n",
              workload.size(), 100.0 * workload.utilization(proc.fmax_hz()));

  // 3. The scheme: BAS-2 = laEDF frequency setting + pUBS ordering over
  //    all released graphs, guarded by the feasibility check.
  core::Scheme scheme = core::make_scheme(core::SchemeKind::kBas2,
                                          proc.fmax_hz(), /*seed=*/1);

  // 4. Simulate 30 seconds of operation and audit the result.
  sim::SimConfig config;
  config.horizon_s = 30.0;
  config.seed = 42;
  const auto energy_run = sim::Simulator(workload, proc, scheme, config).run();
  std::printf(
      "30 s run: %llu instances, %llu nodes, %zu deadline misses,\n"
      "          %.2f J core energy, %.3f A average battery current\n",
      static_cast<unsigned long long>(energy_run.instances_completed),
      static_cast<unsigned long long>(energy_run.nodes_executed),
      energy_run.deadline_misses, energy_run.energy_j,
      energy_run.average_current_a());

  // 5. Attach the scenario's battery and run until it dies.
  const auto battery = world.make_battery();
  sim::SimConfig life_config = config;
  life_config.horizon_s = 24.0 * 3600.0;
  life_config.drain = false;
  life_config.record_profile = false;
  const auto life_run =
      sim::Simulator(workload, proc, scheme, life_config).run(battery.get());
  std::printf("battery: died=%s, lifetime %.1f min, delivered %.0f mAh\n",
              life_run.battery_died ? "yes" : "no",
              life_run.battery_lifetime_s / 60.0,
              life_run.battery_delivered_mah);
  return 0;
}
