// Domain example: a handheld media player (the paper's motivating class
// of device). A video pipeline, an audio pipeline and a UI task share
// one DVS processor; we compare how long a charge lasts under each of
// the five Table-2 schemes, and what that means in minutes of playback.
//
// The task graphs are hand-crafted (named stages, real frame rates);
// the platform and simulation knobs come from the scenario registry's
// `multimedia-pipeline` preset — the same world whose *randomized*
// cousin the scenario gallery sweeps.

#include <cstdio>

#include "analysis/compare.hpp"
#include "scenario/scenario.hpp"
#include "taskgraph/set.hpp"
#include "util/table.hpp"

namespace {

bas::tg::TaskGraphSet media_player_workload() {
  using namespace bas;
  tg::TaskGraphSet set;

  // Video: fetch -> [decode-luma || decode-chroma] -> deblock -> render,
  // 25 fps. Cycle budgets sized for ~48% of a 1 GHz core in the worst
  // case, with large data-dependent variation frame to frame.
  {
    tg::TaskGraph video(0.040, "video");
    const auto fetch = video.add_node(1.5e6, "fetch");
    const auto luma = video.add_node(7.0e6, "decode-luma");
    const auto chroma = video.add_node(4.0e6, "decode-chroma");
    const auto deblock = video.add_node(4.0e6, "deblock");
    const auto render = video.add_node(2.5e6, "render");
    video.add_edge(fetch, luma);
    video.add_edge(fetch, chroma);
    video.add_edge(luma, deblock);
    video.add_edge(chroma, deblock);
    video.add_edge(deblock, render);
    set.add(std::move(video));
  }

  // Audio: demux -> decode -> mix, 50 Hz, ~15% worst case.
  {
    tg::TaskGraph audio(0.020, "audio");
    const auto demux = audio.add_node(0.4e6, "demux");
    const auto decode = audio.add_node(2.0e6, "decode");
    const auto mix = audio.add_node(0.6e6, "mix");
    audio.add_edge(demux, decode);
    audio.add_edge(decode, mix);
    set.add(std::move(audio));
  }

  // UI/housekeeping: input scan -> update, 5 Hz, ~7% worst case.
  {
    tg::TaskGraph ui(0.200, "ui");
    const auto scan = ui.add_node(4e6, "input-scan");
    const auto update = ui.add_node(10e6, "screen-update");
    ui.add_edge(scan, update);
    set.add(std::move(ui));
  }
  return set;
}

}  // namespace

int main() {
  using namespace bas;
  const auto set = media_player_workload();
  const auto& world = scenario::scenario("multimedia-pipeline");
  const auto proc = world.make_processor();
  std::printf("media player: %zu graphs, %zu tasks, worst-case utilization "
              "%.1f%%\n\n",
              set.size(), set.total_nodes(),
              100.0 * set.utilization(proc.fmax_hz()));

  const auto battery = world.make_battery();
  auto config = world.sim_config(11);  // per-node-mean: frames have texture
  config.horizon_s = 48.0 * 3600.0;

  const auto outcomes = analysis::compare_schemes(
      set, proc, core::table2_schemes(), config, battery.get());

  util::Table table({"scheme", "playback (min)", "delivered (mAh)",
                     "avg current (A)", "frames decoded", "misses"});
  for (const auto& o : outcomes) {
    table.add_row(
        {o.scheme, util::Table::num(o.result.battery_lifetime_s / 60.0, 0),
         util::Table::num(o.result.battery_delivered_mah, 0),
         util::Table::num(o.result.average_current_a(), 3),
         util::Table::num(static_cast<long long>(
             o.result.battery_lifetime_s / 0.040)),
         util::Table::num(static_cast<long long>(
             o.result.deadline_misses))});
  }
  table.print();
  std::printf(
      "\nEvery frame deadline holds under all schemes; the scheduler "
      "choice alone decides how much of the same battery the player "
      "gets to use.\n");

  // Real players never see a perfect frame clock: network and decoder
  // queues jitter every release. Re-run the comparison with bounded
  // release jitter (20% of each stream's period) — deadlines stay
  // release-relative, and the battery-aware ordering keeps its edge on
  // the rougher traffic.
  config.arrival.model = "periodic-jitter";
  config.arrival.params.jitter_frac = 0.2;
  const auto jittered = analysis::compare_schemes(
      set, proc, core::table2_schemes(), config, battery.get());

  util::print_banner("Same pipelines, 20% release jitter per stream");
  util::Table jtable({"scheme", "playback (min)", "delivered (mAh)",
                      "misses"});
  for (const auto& o : jittered) {
    jtable.add_row(
        {o.scheme, util::Table::num(o.result.battery_lifetime_s / 60.0, 0),
         util::Table::num(o.result.battery_delivered_mah, 0),
         util::Table::num(static_cast<long long>(
             o.result.deadline_misses))});
  }
  jtable.print();
  std::printf(
      "\nJitter squeezes the window between releases: a frame that is "
      "still decoding when its jittered successor arrives is dropped "
      "(single-buffered pipelines) and counted as a miss. BAS-2 defers "
      "imminent work the longest, so it alone grazes that edge — a few "
      "frames per thousand — while keeping the laEDF-level lifetime.\n");
  return 0;
}
