// Reproduces the paper's Figure 5: canonical EDF ordering vs pUBS-based
// ordering with the feasibility check.
//
// Three task graphs released at t=0:
//   T1: one task, wc = 5 (seconds at fmax), D1 = 20
//   T2: one task, wc = 5, D2 = 50
//   T3: three tasks, wc = 5 each, D3 = 100
// Utilization is 0.5, so fref = 0.5 fmax; all tasks take their wcet so
// fref never changes during the trace. The paper assumes the priority
// function ranks T3's tasks > T2's > T1's. Canonical EDF runs T1, then
// T2, then T3. The pUBS ordering wants T3 first — and the feasibility
// check lets it, because at fref the earlier deadlines remain safe; it
// only forces T1 in when its deadline approaches.

#include <cstdio>
#include <vector>

#include "core/scheme.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "taskgraph/set.hpp"

namespace {

// A priority that reproduces the paper's assumption: later-numbered
// graphs score better (T3 > T2 > T1).
class PaperFigure5Priority final : public bas::sched::PriorityPolicy {
 public:
  std::string name() const override { return "fig5"; }
  double score(const bas::sched::Candidate& c, double) override {
    return -static_cast<double>(c.graph);
  }
};

void run_and_print(const char* label, bas::core::Scheme& scheme,
                   const bas::tg::TaskGraphSet& set,
                   const bas::dvs::Processor& proc) {
  using namespace bas;
  sim::SimConfig config;
  config.horizon_s = 99.0;  // one instance of everything
  config.drain = true;
  config.record_trace = true;
  config.ac_lo_frac = 0.999;  // "all tasks take their wcet"
  config.ac_hi_frac = 1.0;
  sim::Simulator sim(set, proc, scheme, config);
  const auto result = sim.run();

  std::printf("%s\n", label);
  for (const auto& s : result.trace) {
    std::printf("  t=%5.2f..%5.2f  T%d.n%u  @ %.2f GHz\n", s.start_s,
                s.end_s, s.graph + 1, s.node, s.freq_hz / 1e9);
  }
  std::printf("  deadline misses: %zu\n\n", result.deadline_misses);
}

}  // namespace

int main() {
  using namespace bas;
  const auto proc = scenario::make_processor("paper");
  const double fmax = proc.fmax_hz();

  tg::TaskGraphSet set;
  {
    tg::TaskGraph t1(20.0, "T1");
    t1.add_node(5.0 * fmax);
    set.add(std::move(t1));
    tg::TaskGraph t2(50.0, "T2");
    t2.add_node(5.0 * fmax);
    set.add(std::move(t2));
    tg::TaskGraph t3(100.0, "T3");
    t3.add_node(5.0 * fmax);
    t3.add_node(5.0 * fmax);
    t3.add_node(5.0 * fmax);
    set.add(std::move(t3));
  }
  std::printf(
      "Figure 5: T1(wc=5, D=20), T2(wc=5, D=50), T3(3x wc=5, D=100); "
      "U=0.5 so fref = 0.5 fmax\n\n");

  // (a) canonical EDF: most-imminent scope forces T1, T2, T3 order.
  core::Scheme edf = core::make_custom_scheme(
      "canonical-EDF", dvs::make_cc_edf(fmax), sched::make_fifo_priority(),
      sched::make_worst_case_estimator(), core::ReadyScope::kMostImminent);
  run_and_print("(a) canonical EDF ordering:", edf, set, proc);

  // (b) priority ordering over all released graphs + feasibility check.
  core::Scheme bas = core::make_custom_scheme(
      "pUBS+feasibility", dvs::make_cc_edf(fmax),
      std::make_unique<PaperFigure5Priority>(),
      sched::make_worst_case_estimator(), core::ReadyScope::kAllReleased);
  run_and_print(
      "(b) priority-function ordering (T3 > T2 > T1) with feasibility "
      "check:",
      bas, set, proc);

  std::printf(
      "In (b) the scheduler runs T3's tasks first because the feasibility\n"
      "check proves T1/T2 stay safe at fref; it switches to T1 just in\n"
      "time. Deadlines hold in both traces without exceeding fref.\n");
  return 0;
}
