// Battery model explorer: how much extra charge does resting between
// pulses buy? A pulse train (--pulse A for --on s, rest --off s) runs
// for --cycles cycles on the KiBaM and diffusion cells, then drains
// whatever is left at the pulse current; the sweep varies the rest
// duration and reports the total extractable charge per model — the
// recovery effect the paper's §3 figures build intuition for, priced on
// the experiment engine (--jobs/--csv/--shard all work).
//
//   $ ./build/examples/battery_explorer
//   $ ./build/examples/battery_explorer --pulse 2.5 --cycles 20
//
// Pass --trace to additionally print the internal state trajectory
// (two wells, bound charge, recovery while idle) for the --off rest.
//
//   $ ./build/examples/battery_explorer --trace --off 120

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "battery/diffusion.hpp"
#include "battery/kibam.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace bas;

/// Pulse train then full drain; returns total delivered charge (mAh).
double train_and_drain_mah(bat::Battery& battery, double pulse_a, double on_s,
                           double off_s, int cycles) {
  for (int c = 0; c < cycles && !battery.empty(); ++c) {
    battery.draw(pulse_a, on_s);
    if (off_s > 0.0 && !battery.empty()) {
      battery.draw(0.0, off_s);
    }
  }
  // A zero pulse can never empty the cell, and recovery could stretch a
  // tiny one almost indefinitely — bound the drain at ~4 months.
  double drained_s = 0.0;
  while (pulse_a > 0.0 && !battery.empty() && drained_s < 1e7) {
    drained_s += 60.0;
    battery.draw(pulse_a, 60.0);
  }
  return battery.charge_delivered_mah();
}

void print_trace(double pulse_a, double on_s, double off_s, int cycles) {
  // The registry builds the same calibrated cells the sweeps use; the
  // concrete types expose the internal wells the trajectory shows.
  const auto kibam_cell = scenario::make_battery("kibam");
  const auto diffusion_cell = scenario::make_battery("diffusion");
  auto& kibam = dynamic_cast<bat::KibamBattery&>(*kibam_cell);
  auto& diffusion = dynamic_cast<bat::DiffusionBattery&>(*diffusion_cell);

  std::printf(
      "\npulse train: %.2f A for %.0f s, rest %.0f s, %d cycles\n"
      "KiBaM: available/bound wells (C); diffusion: drawn/unavailable "
      "(C)\n\n",
      pulse_a, on_s, off_s, cycles);
  std::printf(
      "%8s  %10s %10s %7s  |  %10s %12s %7s\n", "t (s)", "available",
      "bound", "dead", "drawn", "unavailable", "dead");

  auto report = [&](double t) {
    std::printf("%8.0f  %10.1f %10.1f %7s  |  %10.1f %12.1f %7s\n", t,
                kibam.available_c(), kibam.bound_c(),
                kibam.empty() ? "DEAD" : "", diffusion.charge_delivered_c(),
                diffusion.unavailable_c(), diffusion.empty() ? "DEAD" : "");
  };

  double t = 0.0;
  report(t);
  for (int c = 0; c < cycles && !kibam.empty(); ++c) {
    kibam.draw(pulse_a, on_s);
    diffusion.draw(pulse_a, on_s);
    t += on_s;
    report(t);
    if (kibam.empty() || diffusion.empty()) {
      break;
    }
    kibam.draw(0.0, off_s);
    diffusion.draw(0.0, off_s);
    t += off_s;
    report(t);
  }

  std::printf(
      "\nDuring each rest the available well refills from the bound well\n"
      "(KiBaM) and the unavailable charge decays (diffusion) — the\n"
      "recovery effect. When the available well empties, charge is still\n"
      "trapped in the bound well: that is what battery-aware scheduling\n"
      "rescues.\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults({{"pulse", "1.8"},
                                                {"on", "120"},
                                                {"off", "120"},
                                                {"cycles", "12"},
                                                {"trace", "false"}}));
  const double pulse_a = cli.get_double("pulse");
  const double on_s = cli.get_double("on");
  const int cycles = static_cast<int>(cli.get_int("cycles"));

  const std::vector<double> rests{0.0, 30.0, 60.0, 120.0, 240.0, 480.0};
  std::vector<std::string> rest_labels;
  for (const double rest : rests) {
    rest_labels.push_back(util::Table::num(rest, 0));
  }

  util::print_banner(
      "Battery explorer: rest duration vs total extractable charge");

  exp::ExperimentSpec spec;
  spec.title = "battery_explorer";
  spec.config = cli.config_summary();
  spec.grid.add("rest_s", rest_labels);
  spec.metrics = {"kibam_mah", "diffusion_mah"};
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    const double off_s = rests[job.at(0)];
    const auto kibam = scenario::make_battery("kibam");
    const auto diffusion = scenario::make_battery("diffusion");
    return {train_and_drain_mah(*kibam, pulse_a, on_s, off_s, cycles),
            train_and_drain_mah(*diffusion, pulse_a, on_s, off_s, cycles)};
  };
  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  util::Table table({"rest (s)", "kibam (mAh)", "diffusion (mAh)",
                     "kibam gain vs no rest"});
  const double base = result.mean(0, 0);
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    std::string gain = "n/a";  // a zero-pulse sweep delivers nothing
    if (base > 0.0) {
      const double gain_pct = 100.0 * (result.mean(c, 0) / base - 1.0);
      gain = std::string(gain_pct >= 0.0 ? "+" : "") +
             util::Table::num(gain_pct, 2) + "%";
    }
    table.add_row(
        {result.grid().labels(c)[0], util::Table::num(result.mean(c, 0), 1),
         util::Table::num(result.mean(c, 1), 1), gain});
  }
  table.print();
  std::printf(
      "\nLonger rests let the two-well models equalize, so the same cell "
      "delivers more of its charge — the headroom battery-aware "
      "scheduling plays for.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  if (cli.get_flag("trace")) {
    print_trace(pulse_a, on_s, cli.get_double("off"), cycles);
  }
  return 0;
}
