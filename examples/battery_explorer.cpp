// Battery model explorer: prints the internal state trajectories of the
// KiBaM and diffusion models under a user-specified pulse pattern, to
// build the intuition behind the paper's §3 figures (two wells, bound
// charge, recovery while idle).
//
//   $ ./build/examples/battery_explorer --pulse 1.8 --on 120 --off 120

#include <cstdio>

#include "battery/diffusion.hpp"
#include "battery/kibam.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, {{"pulse", "1.8"},
                             {"on", "120"},
                             {"off", "120"},
                             {"cycles", "12"}});
  const double pulse_a = cli.get_double("pulse");
  const double on_s = cli.get_double("on");
  const double off_s = cli.get_double("off");
  const int cycles = static_cast<int>(cli.get_int("cycles"));

  bat::KibamBattery kibam(bat::KibamParams::paper_aaa_nimh());
  bat::DiffusionBattery diffusion(bat::DiffusionParams::paper_aaa_nimh());

  std::printf(
      "pulse train: %.2f A for %.0f s, rest %.0f s, %d cycles\n"
      "KiBaM: available/bound wells (C); diffusion: drawn/unavailable "
      "(C)\n\n",
      pulse_a, on_s, off_s, cycles);
  std::printf(
      "%8s  %10s %10s %7s  |  %10s %12s %7s\n", "t (s)", "available",
      "bound", "dead", "drawn", "unavailable", "dead");

  auto report = [&](double t) {
    std::printf("%8.0f  %10.1f %10.1f %7s  |  %10.1f %12.1f %7s\n", t,
                kibam.available_c(), kibam.bound_c(),
                kibam.empty() ? "DEAD" : "", diffusion.charge_delivered_c(),
                diffusion.unavailable_c(), diffusion.empty() ? "DEAD" : "");
  };

  double t = 0.0;
  report(t);
  for (int c = 0; c < cycles && !kibam.empty(); ++c) {
    kibam.draw(pulse_a, on_s);
    diffusion.draw(pulse_a, on_s);
    t += on_s;
    report(t);
    if (kibam.empty() || diffusion.empty()) {
      break;
    }
    kibam.draw(0.0, off_s);
    diffusion.draw(0.0, off_s);
    t += off_s;
    report(t);
  }

  std::printf(
      "\nDuring each rest the available well refills from the bound well\n"
      "(KiBaM) and the unavailable charge decays (diffusion) — the\n"
      "recovery effect. When the available well empties, charge is still\n"
      "trapped in the bound well: that is what battery-aware scheduling\n"
      "rescues.\n");
  return 0;
}
