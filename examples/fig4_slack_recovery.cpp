// Reproduces the paper's Figure 4: "Example of order affecting slack
// recovery".
//
// Two independent tasks share deadline 10: task1 with wc=4, task2 with
// wc=6 (scaled to cycles at 1 GHz). Case 1: actuals are 40% and 60% of
// wc; case 2: 60% and 40%. The traces show LTF (run task2 first) against
// STF (task1 first): in case 1 STF recovers more slack, in case 2 LTF
// does — which is exactly why a smarter priority function (pUBS) that
// uses per-task estimates beats any fixed rule.

#include <cstdio>
#include <string>
#include <vector>

#include "dvs/processor.hpp"
#include "scenario/scenario.hpp"
#include "sched/optimal.hpp"
#include "taskgraph/graph.hpp"

namespace {

void print_trace(const std::string& label, const bas::tg::TaskGraph& g,
                 const std::vector<double>& actuals,
                 const std::vector<bas::tg::NodeId>& order,
                 const bas::dvs::Processor& proc) {
  using namespace bas;
  // Re-simulate the order to recover per-task speeds and spans.
  double t = 0.0;
  double remaining_wc = g.total_wcet_cycles();
  std::printf("  %-28s", label.c_str());
  for (tg::NodeId id : order) {
    const double fref = remaining_wc / (g.deadline() - t);
    const double f = std::min(fref, proc.fmax_hz());
    const double dur = actuals[id] / f;
    std::printf("[T%u %4.2fGHz %.2fs] ", id + 1, f / 1e9, dur);
    t += dur;
    remaining_wc -= g.node(id).wcet_cycles;
  }
  const auto run = sched::evaluate_order(g, actuals, proc, order);
  std::printf("-> finish %.2fs, energy %.3f J\n", run.finish_time_s,
              run.energy_j);
}

}  // namespace

int main() {
  using namespace bas;
  const auto proc = scenario::make_processor("continuous");

  tg::TaskGraph g(10.0, "fig4");
  g.add_node(4e9, "task1");  // wc = 4 s at 1 GHz
  g.add_node(6e9, "task2");  // wc = 6 s at 1 GHz

  std::printf(
      "Figure 4: two tasks, deadline 10 s, wc = {4, 6} s at 1 GHz\n\n");

  {
    std::printf("case 1: actuals 40%% and 60%% of wc\n");
    const std::vector<double> ac{0.4 * 4e9, 0.6 * 6e9};
    print_trace("A: LTF (task2 first)", g, ac, {1, 0}, proc);
    print_trace("B: STF (task1 first)", g, ac, {0, 1}, proc);
    const auto ltf = sched::evaluate_order(g, ac, proc, {1, 0});
    const auto stf = sched::evaluate_order(g, ac, proc, {0, 1});
    std::printf("  => %s wins (%.1f%% less energy)\n\n",
                stf.energy_j < ltf.energy_j ? "STF" : "LTF",
                100.0 * std::abs(1.0 - stf.energy_j / ltf.energy_j));
  }
  {
    std::printf("case 2: actuals 60%% and 40%% of wc\n");
    const std::vector<double> ac{0.6 * 4e9, 0.4 * 6e9};
    print_trace("A: LTF (task2 first)", g, ac, {1, 0}, proc);
    print_trace("B: STF (task1 first)", g, ac, {0, 1}, proc);
    const auto ltf = sched::evaluate_order(g, ac, proc, {1, 0});
    const auto stf = sched::evaluate_order(g, ac, proc, {0, 1});
    std::printf("  => %s wins (%.1f%% less energy)\n\n",
                stf.energy_j < ltf.energy_j ? "STF" : "LTF",
                100.0 * std::abs(1.0 - stf.energy_j / ltf.energy_j));
  }
  std::printf(
      "No fixed rule wins both cases; pUBS with per-task estimates picks "
      "the right task each time (Table 1 bench).\n");
  return 0;
}
